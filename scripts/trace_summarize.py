#!/usr/bin/env python3
"""Explain a run from its flight-recorder artifacts.

Usage: trace_summarize.py [ARTIFACT_DIR] [--top N] [--strict]

Reads the files a run exports when CLOVE_FLIGHT_RECORDER is on and
CLOVE_JSON_OUT points at ARTIFACT_DIR (default: out):

  FLIGHT_<scheme>.json               summary + audit counters + path shares
  flight_<scheme>_journeys.jsonl     one line per tracked packet journey
  flight_<scheme>_flows.jsonl        one line per flowlet record
  flight_<scheme>_timeseries.csv     per-link utilization / queue samples

and prints, per scheme: delivery and reconstruction totals, the four
invariant-audit verdicts, where the bytes actually went (per mid-path node),
drop attribution, the most congested links over time, the deepest queues
any packet actually crossed, and the flows with the most retransmits.

Stdlib only — runs in CI with no installs. Exit status: 0 = report printed
(violations included, unless --strict), 1 = --strict and an auditor fired,
2 = no artifacts found / parse error.
"""

import csv
import json
import os
import sys

AUDITORS = ("conservation", "flowlet_reorder", "vm_reorder", "ecn_mask")


def load_jsonl(path):
    if not os.path.exists(path):
        return []
    out = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def fmt_bytes(n):
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024 or unit == "GB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    return f"{n:.1f} GB"


def summarize_timeseries(path, top):
    """Top-N links by peak utilization, with their deepest queue sample."""
    if not os.path.exists(path):
        return []
    with open(path) as f:
        rows = list(csv.reader(f))
    if len(rows) < 2:
        return []
    header = rows[0]
    # Columns come in util:<link> / queue:<link> pairs sharing the link name.
    links = {}
    for idx, col in enumerate(header):
        if ":" not in col:
            continue
        kind, link = col.split(":", 1)
        links.setdefault(link, {})[kind] = idx
    peaks = []
    for link, cols in links.items():
        peak_util = peak_q = 0.0
        for row in rows[1:]:
            try:
                if "util" in cols:
                    peak_util = max(peak_util, float(row[cols["util"]]))
                if "queue" in cols:
                    peak_q = max(peak_q, float(row[cols["queue"]]))
            except (ValueError, IndexError):
                continue
        peaks.append((peak_util, peak_q, link))
    peaks.sort(reverse=True)
    return peaks[:top]


def report_scheme(dir_, fname, top):
    with open(os.path.join(dir_, fname)) as f:
        doc = json.load(f)
    scheme = doc.get("scheme", fname[len("FLIGHT_"):-len(".json")])
    names = doc.get("node_names", {})
    print(f"=== {scheme} (mode={doc.get('mode', '?')}) ===")
    print(f"  packets seen      {doc.get('packets_seen', 0):>12,}")
    print(f"  journeys tracked  {doc.get('journeys_started', 0):>12,}"
          f"  (delivered {doc.get('delivered', 0):,},"
          f" consumed {doc.get('consumed', 0):,},"
          f" dropped {doc.get('dropped', 0):,})")
    print(f"  path reconstruction rate  {doc.get('reconstruction_rate', 0.0):.4f}")

    audit = doc.get("audit", {})
    total = sum(int(audit.get(a, 0)) for a in AUDITORS)
    verdict = "all clean" if total == 0 else "VIOLATIONS"
    detail = " ".join(f"{a}={int(audit.get(a, 0))}" for a in AUDITORS)
    print(f"  invariant audits: {detail}  [{verdict}]")

    paths = doc.get("paths", [])
    total_bytes = sum(p.get("bytes", 0) for p in paths) or 1
    for p in paths:
        via = str(p.get("via"))
        name = names.get(via, f"n{via}")
        share = 100.0 * p.get("bytes", 0) / total_bytes
        print(f"  via {name:<6} {share:5.1f}% of bytes"
              f"  ({fmt_bytes(p.get('bytes', 0))},"
              f" {p.get('packets', 0):,} pkts,"
              f" {p.get('flowlets', 0):,} flowlets)")

    stem = fname[len("FLIGHT_"):-len(".json")]
    journeys = load_jsonl(os.path.join(dir_, f"flight_{stem}_journeys.jsonl"))
    if journeys:
        # Drop attribution: which node and outcome ended the failed journeys.
        drops = {}
        deep = {}
        for j in journeys:
            out = j.get("outcome", "?")
            if out.startswith("drop"):
                key = (out, j.get("end_node", "?"))
                drops[key] = drops.get(key, 0) + 1
            for hop in j.get("hops", []):
                node = hop.get("node", "?")
                q = hop.get("q_bytes", 0.0)
                if q >= deep.get(node, -1.0):
                    deep[node] = q
        if drops:
            print("  drops by (cause, node):")
            ranked = sorted(drops.items(), key=lambda kv: -kv[1])[:top]
            for (out, node), n in ranked:
                print(f"    {out:<14} at {node:<6} {n:,}")
        if deep:
            print("  deepest queues crossed (per node):")
            ranked = sorted(deep.items(), key=lambda kv: -kv[1])[:top]
            for node, q in ranked:
                print(f"    {node:<6} {fmt_bytes(q)}")

    flows = load_jsonl(os.path.join(dir_, f"flight_{stem}_flows.jsonl"))
    if flows:
        by_flow = {}
        for r in flows:
            agg = by_flow.setdefault(r.get("flow", "?"),
                                     {"bytes": 0, "rtx": 0, "flowlets": 0})
            agg["bytes"] += r.get("bytes", 0)
            agg["rtx"] += r.get("retransmits", 0)
            agg["flowlets"] += 1
        worst = sorted(by_flow.items(), key=lambda kv: -kv[1]["rtx"])[:top]
        if any(agg["rtx"] for _, agg in worst):
            print("  flows with most retransmits:")
            for flow, agg in worst:
                if agg["rtx"] == 0:
                    continue
                print(f"    {flow:<24} {agg['rtx']:,} rtx over"
                      f" {agg['flowlets']:,} flowlets"
                      f" ({fmt_bytes(agg['bytes'])})")

    peaks = summarize_timeseries(
        os.path.join(dir_, f"flight_{stem}_timeseries.csv"), top)
    if peaks:
        print("  most congested links (peak over sampled intervals):")
        for util, q, link in peaks:
            print(f"    {link:<12} peak util {util:5.1%}, peak queue {fmt_bytes(q)}")
    print()
    return total


def main(argv):
    dir_ = "out"
    top = 5
    strict = False
    args = argv[1:]
    while args:
        a = args.pop(0)
        if a == "--top":
            top = int(args.pop(0))
        elif a == "--strict":
            strict = True
        elif a.startswith("-"):
            print(__doc__.strip().splitlines()[2], file=sys.stderr)
            return 2
        else:
            dir_ = a
    try:
        flight_files = sorted(f for f in os.listdir(dir_)
                              if f.startswith("FLIGHT_") and f.endswith(".json"))
    except OSError as e:
        print(f"trace_summarize: {e}", file=sys.stderr)
        return 2
    if not flight_files:
        print(f"trace_summarize: no FLIGHT_*.json artifacts in {dir_} "
              "(run with CLOVE_FLIGHT_RECORDER=full and CLOVE_JSON_OUT set)",
              file=sys.stderr)
        return 2
    violations = 0
    try:
        for fname in flight_files:
            violations += report_scheme(dir_, fname, top)
    except (OSError, ValueError, json.JSONDecodeError, KeyError) as e:
        print(f"trace_summarize: {e}", file=sys.stderr)
        return 2
    if violations and strict:
        print(f"trace_summarize: {violations} audit violation(s) recorded",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
