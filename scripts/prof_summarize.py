#!/usr/bin/env python3
"""Summarize clove::prof engine self-profiles from bench/run artifacts.

Usage: prof_summarize.py [DIR] [--top N] [--strict] [--max-sync-frac F]

Scans DIR (default: .) for the three artifact kinds the engine profiler
emits (stdlib only — runs in CI before anything is installed):

* ``*.json`` bench artifacts whose ``engine.self_profile`` section carries
  per-scope time attribution, engine gauges (events, queue high-water,
  packet-pool churn, peak RSS) and FlatMap table digests;
* ``PROF_*.folded`` folded-stack flamegraph lines (``clove;a;b <self_ns>``),
  ready for inferno/flamegraph.pl — the top stacks are printed here;
* ``PROF_*_trace.json`` Chrome trace-event files (chrome://tracing or
  Perfetto) — validated, counted, and pointed at.

Sharded runs (CLOVE_SHARDS > 1) add a per-shard section: each shard's
events, attributed self time, and its ``shard_sync`` barrier-wait share.
``--max-sync-frac F`` flags any profile whose aggregate barrier wait
exceeds F x dispatch self time (default 1.0 — CI passes this generous
bound so a pathological sync-dominated run fails loudly while single-core
runners, where waiting equals the work they displaced, stay green).

``--strict`` turns consistency problems into a non-zero exit for CI:
no self-profile found at all, a scope whose self time exceeds its total,
folded lines that do not parse, a trace file that is not a valid
trace-event JSON, a stack-overflow count > 0 (the profiler ran out of
frames — attribution is incomplete), or a barrier-wait share over
``--max-sync-frac``.

Exit status: 0 = ok, 1 = --strict violation, 2 = usage error.
"""

import json
import os
import sys


def fmt_ns(ns):
    ns = float(ns)
    if ns >= 1e9:
        return f"{ns / 1e9:.2f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f} us"
    return f"{ns:.0f} ns"


def summarize_profile(tag, sp, top, problems, max_sync_frac=1.0):
    """Print one self_profile section; append strict violations to problems."""
    mode = sp.get("mode", "?")
    overflows = sp.get("stack_overflows", 0)
    total_self = sp.get("profiled_self_ns", 0)
    print(f"\n== {tag} (mode={mode}) ==")
    eng = sp.get("engine", {})
    if eng:
        print(f"  engine: {eng.get('events', 0):,.0f} events over "
              f"{eng.get('sims', 0):.0f} sim(s), queue hwm "
              f"{eng.get('queue_hwm', 0):,.0f}, slab "
              f"{eng.get('event_slab_capacity', 0):,.0f}, pool "
              f"{eng.get('pool_allocated', 0):,.0f} alloc / "
              f"{eng.get('pool_reused', 0):,.0f} reused, peak rss "
              f"{eng.get('peak_rss_mb', 0):.1f} MB")
    scopes = sp.get("scopes", [])
    ranked = sorted(scopes, key=lambda s: -s.get("self_ns", 0))
    if ranked:
        print(f"  top sinks (of {fmt_ns(total_self)} attributed):")
    for s in ranked[:top]:
        line = (f"    {s.get('name', '?'):<16} {fmt_ns(s.get('self_ns', 0)):>10} self"
                f"  {100.0 * s.get('self_frac', 0.0):5.1f}%"
                f"  x{s.get('count', 0):,.0f}")
        if "p99_ns" in s:
            line += f"  p99 {fmt_ns(s['p99_ns'])}"
        print(line)
    for s in scopes:
        if s.get("self_ns", 0) > s.get("total_ns", 0):
            problems.append(
                f"{tag}: scope {s.get('name')} self_ns > total_ns")
    tables = sp.get("tables", [])
    if tables:
        print("  tables:")
        for t in tables:
            cap = t.get("capacity", 0)
            occ = 100.0 * t.get("size", 0) / cap if cap else 0.0
            print(f"    {t.get('name', '?'):<22} {t.get('size', 0):>8,.0f} / "
                  f"{cap:,.0f} slots ({occ:.0f}%)  avg probe "
                  f"{t.get('avg_probe', 0):.2f}  max {t.get('max_probe', 0):.0f}"
                  f"  [{t.get('tables', 0):.0f} table(s)]")
    shards = sp.get("shards", [])
    if shards:
        print(f"  shards ({len(shards)}):")
        for sh in shards:
            sh_scopes = {s.get("name"): s for s in sh.get("scopes", [])}
            sh_self = sum(s.get("self_ns", 0) for s in sh_scopes.values())
            sh_sync = sh_scopes.get("shard_sync", {}).get("self_ns", 0)
            sh_disp = sh_scopes.get("dispatch", {}).get("self_ns", 0)
            share = 100.0 * sh_sync / sh_disp if sh_disp else 0.0
            print(f"    shard {sh.get('shard', '?'):>3}  "
                  f"{sh.get('events', 0):>12,.0f} events  "
                  f"{fmt_ns(sh_self):>10} self  "
                  f"sync {fmt_ns(sh_sync):>10} ({share:.1f}% of dispatch)")
    # Barrier-wait bound: shard_sync is pure coordination (spin/yield at
    # window barriers), so its share of dispatch self time is the sharding
    # tax. The aggregate over the session-merged scopes covers every shard
    # and worker.
    by_name = {s.get("name"): s for s in scopes}
    sync_ns = by_name.get("shard_sync", {}).get("self_ns", 0)
    dispatch_ns = by_name.get("dispatch", {}).get("self_ns", 0)
    if sync_ns and dispatch_ns:
        frac = sync_ns / dispatch_ns
        print(f"  shard_sync barrier wait: {fmt_ns(sync_ns)} = "
              f"{frac:.2f}x dispatch (bound {max_sync_frac:g})")
        if frac > max_sync_frac:
            problems.append(
                f"{tag}: barrier wait {frac:.2f}x dispatch exceeds "
                f"--max-sync-frac {max_sync_frac:g}")
    # Hybrid flow/packet engine (CLOVE_HYBRID=on): promotion, the rate
    # solver, and fluid advancement all bill to one scope. Its share of
    # dispatch is the price of skipping the elephants' packet events.
    hybrid_ns = by_name.get("hybrid", {}).get("self_ns", 0)
    if hybrid_ns:
        share = 100.0 * hybrid_ns / dispatch_ns if dispatch_ns else 0.0
        print(f"  hybrid engine: {fmt_ns(hybrid_ns)} self "
              f"({share:.1f}% of dispatch) "
              f"x{by_name.get('hybrid', {}).get('count', 0):,.0f}")
    if overflows:
        print(f"  WARNING: {overflows} scope-stack overflows "
              "(attribution incomplete)")
        problems.append(f"{tag}: {overflows} stack overflows")


def summarize_folded(path, top, problems):
    stacks = []
    with open(path) as f:
        for ln, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            stack, sep, value = line.rpartition(" ")
            if not sep or not stack or not value.lstrip("-").isdigit():
                problems.append(f"{path}:{ln}: unparsable folded line")
                continue
            stacks.append((stack, int(value)))
    print(f"\n== {os.path.basename(path)} ({len(stacks)} stacks) ==")
    for stack, value in sorted(stacks, key=lambda kv: -kv[1])[:top]:
        print(f"    {fmt_ns(value):>10}  {stack}")
    return stacks


def validate_trace(path, problems):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        problems.append(f"{path}: invalid trace JSON ({e})")
        return
    events = doc.get("traceEvents") if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        problems.append(f"{path}: no traceEvents array")
        return
    bad = sum(1 for e in events
              if not isinstance(e, dict) or "ph" not in e or "ts" not in e)
    print(f"\n== {os.path.basename(path)} ==")
    print(f"    {len(events)} trace events (open in chrome://tracing "
          "or ui.perfetto.dev)")
    if bad:
        problems.append(f"{path}: {bad} malformed trace events")


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    strict = "--strict" in argv
    top = 5
    if "--top" in argv:
        i = argv.index("--top")
        if i + 1 >= len(argv):
            print("prof_summarize: --top needs a value", file=sys.stderr)
            return 2
        top = int(argv[i + 1])
        args = [a for a in args if a != argv[i + 1]]
    max_sync_frac = 1.0
    if "--max-sync-frac" in argv:
        i = argv.index("--max-sync-frac")
        if i + 1 >= len(argv):
            print("prof_summarize: --max-sync-frac needs a value",
                  file=sys.stderr)
            return 2
        max_sync_frac = float(argv[i + 1])
        args = [a for a in args if a != argv[i + 1]]
    if len(args) > 1:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    root = args[0] if args else "."
    if not os.path.isdir(root):
        print(f"prof_summarize: {root}: not a directory", file=sys.stderr)
        return 2

    problems = []
    profiles = 0
    names = sorted(os.listdir(root))
    for name in names:
        path = os.path.join(root, name)
        if name.endswith(".json") and not name.endswith("_trace.json"):
            try:
                with open(path) as f:
                    doc = json.load(f)
            except (OSError, json.JSONDecodeError):
                continue  # not ours (journey JSONL etc.)
            sp = None
            if isinstance(doc, dict):
                sp = doc.get("engine", {}).get("self_profile") \
                    if isinstance(doc.get("engine"), dict) else None
                if sp is None and "profiled_self_ns" in doc:
                    sp = doc  # a bare self-profile dump
            if sp is not None:
                summarize_profile(name, sp, top, problems, max_sync_frac)
                profiles += 1
        elif name.startswith("PROF_") and name.endswith(".folded"):
            summarize_folded(path, top, problems)
            profiles += 1
        elif name.startswith("PROF_") and name.endswith("_trace.json"):
            validate_trace(path, problems)

    if profiles == 0:
        msg = f"prof_summarize: no engine self-profiles under {root}"
        if strict:
            print(msg, file=sys.stderr)
            return 1
        print(msg + " (run with CLOVE_PROF=summary|full)")
        return 0
    if problems:
        print(f"\nprof_summarize: {len(problems)} problem(s):",
              file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1 if strict else 0
    print(f"\nprof_summarize: {profiles} profile artifact(s) ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
