#!/usr/bin/env python3
"""Compare a fresh bench JSON artifact against a committed baseline.

Usage: bench_check.py BASELINE.json CURRENT.json

Two families of checks over the flat `values` array each bench artifact
carries (stdlib only — this runs in CI before anything is installed):

* Allocation counters (``*.allocs_per_event`` / ``*.allocs_per_pkt``): the
  current value must not exceed baseline + ALLOC_SLACK. Steady-state pooled
  paths are pinned at (effectively) zero while the deliberately heap-backed
  comparison rows (``BM_*_Heap``, baseline == 1) stay allowed at 1. The
  small absolute slack tolerates rare amortized table maintenance (FlatMap
  tombstone rebuilds, ring growth) that is not a leak of per-packet
  allocations.

* Throughput (``*_per_sec``) and latency (``*.ns_per_*``): fail on a
  regression beyond TOLERANCE (default 25%, override with
  ``BENCH_CHECK_TOLERANCE=0.40`` etc. for noisy runners). Throughput must
  stay above baseline * (1 - tol); latency below baseline / (1 - tol).

* Paired ratios (``*_ratio``, e.g. the flight-recorder overhead guard):
  the bench computed these as same-run A/B comparisons, so machine speed
  cancels out and they get a tight absolute band — the current value must
  stay above baseline - RATIO_SLACK (2 points).

* Recovery times (``*.recovery_ms``, the fault-recovery bench): these are
  *simulated* milliseconds, so machine speed does not enter at all — only
  the relative tolerance plus a one-bucket absolute slack (RECOVERY_SLACK_MS)
  for bucket-boundary jitter. A baseline < 0 means the scheme never
  recovered (by design for ECMP) and the row is informational; a current
  value < 0 against a recovering baseline is a hard FAIL — the scheme lost
  its ability to recover, which no tolerance forgives.

Metrics present in only one of the two files are reported but non-fatal:
benches gain and lose counters across PRs, and the baseline is refreshed by
re-running ./run_benches.sh (artifacts land at the repo root by default).

Exit status: 0 = all checks pass, 1 = at least one regression, 2 = usage or
parse error.
"""

import json
import os
import sys

ALLOC_SLACK = 0.01  # absolute allocs-per-event slack for amortized housekeeping
RATIO_SLACK = 0.02  # absolute band for same-run A/B overhead ratios
RECOVERY_SLACK_MS = 50.0  # one FCT bucket of boundary jitter for recovery times
DEFAULT_TOLERANCE = 0.25


def load_values(path):
    with open(path) as f:
        doc = json.load(f)
    vals = {}
    for entry in doc.get("values", []):
        name, value = entry.get("name"), entry.get("value")
        if isinstance(name, str) and isinstance(value, (int, float)):
            vals[name] = float(value)
    if not vals:
        raise ValueError(f"{path}: no 'values' entries to check")
    return vals


def is_alloc(name):
    return name.endswith(".allocs_per_event") or name.endswith(".allocs_per_pkt")


def is_throughput(name):
    return name.endswith("_per_sec")


def is_ratio(name):
    return name.endswith("_ratio")


def is_latency(name):
    tail = name.rsplit(".", 1)[-1]
    return tail.startswith("ns_per_")


def is_recovery(name):
    return name.endswith(".recovery_ms")


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    tol = float(os.environ.get("BENCH_CHECK_TOLERANCE", DEFAULT_TOLERANCE))
    try:
        base = load_values(argv[1])
        cur = load_values(argv[2])
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"bench_check: {e}", file=sys.stderr)
        return 2

    failures = []
    checked = 0
    for name in sorted(set(base) | set(cur)):
        if name not in base or name not in cur:
            side = "baseline" if name not in cur else "current"
            print(f"  [skip] {name}: only in {side}")
            continue
        b, c = base[name], cur[name]
        if is_alloc(name):
            checked += 1
            limit = b + ALLOC_SLACK
            status = "FAIL" if c > limit else "ok"
            print(f"  [{status}] {name}: {c:.6g} (baseline {b:.6g}, limit {limit:.6g})")
            if c > limit:
                failures.append(name)
        elif is_ratio(name):
            checked += 1
            floor = b - RATIO_SLACK
            status = "FAIL" if c < floor else "ok"
            print(f"  [{status}] {name}: {c:.6g} (baseline {b:.6g}, floor {floor:.6g})")
            if c < floor:
                failures.append(name)
        elif is_throughput(name):
            checked += 1
            floor = b * (1.0 - tol)
            status = "FAIL" if c < floor else "ok"
            print(f"  [{status}] {name}: {c:.6g} (baseline {b:.6g}, floor {floor:.6g})")
            if c < floor:
                failures.append(name)
        elif is_latency(name):
            checked += 1
            ceil = b / (1.0 - tol)
            status = "FAIL" if c > ceil else "ok"
            print(f"  [{status}] {name}: {c:.6g} (baseline {b:.6g}, ceiling {ceil:.6g})")
            if c > ceil:
                failures.append(name)
        elif is_recovery(name):
            if b < 0:
                # Baseline never recovers (ECMP has no edge state to repair);
                # nothing to hold the current run to.
                print(f"  [info] {name}: {c:.6g} (baseline never recovers)")
                continue
            checked += 1
            ceil = b * (1.0 + tol) + RECOVERY_SLACK_MS
            bad = c < 0 or c > ceil
            status = "FAIL" if bad else "ok"
            shown = "never" if c < 0 else f"{c:.6g}"
            print(f"  [{status}] {name}: {shown} (baseline {b:.6g}, ceiling {ceil:.6g})")
            if bad:
                failures.append(name)
        # Other values (counters like pool_allocated) are informational.

    if checked == 0:
        print("bench_check: no comparable perf metrics found", file=sys.stderr)
        return 2
    if failures:
        print(f"bench_check: {len(failures)}/{checked} checks FAILED: "
              + ", ".join(failures), file=sys.stderr)
        return 1
    print(f"bench_check: all {checked} checks passed (tolerance {tol:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
