#!/usr/bin/env python3
"""Compare a fresh bench JSON artifact against a committed baseline.

Usage: bench_check.py BASELINE.json CURRENT.json

Two families of checks over the flat `values` array each bench artifact
carries (stdlib only — this runs in CI before anything is installed):

* Allocation counters (``*.allocs_per_event`` / ``*.allocs_per_pkt``): the
  current value must not exceed baseline + ALLOC_SLACK. Steady-state pooled
  paths are pinned at (effectively) zero while the deliberately heap-backed
  comparison rows (``BM_*_Heap``, baseline == 1) stay allowed at 1. The
  small absolute slack tolerates rare amortized table maintenance (FlatMap
  tombstone rebuilds, ring growth) that is not a leak of per-packet
  allocations.

* Throughput (``*_per_sec`` — pkts_per_sec, events_per_sec, …) and latency
  (``*.ns_per_*``): fail on a regression beyond TOLERANCE (default 25%,
  override with ``BENCH_CHECK_TOLERANCE=0.40`` etc. for noisy runners).
  Throughput must stay above baseline * (1 - tol); latency below
  baseline / (1 - tol).

* Paired ratios (``*_ratio``, e.g. the flight-recorder overhead guard):
  the bench computed these as same-run A/B comparisons, so machine speed
  cancels out and they get a tight absolute band — the current value must
  stay above baseline - RATIO_SLACK (2 points). Ratios far from parity
  (baseline > 2, e.g. the hybrid engine's ~50x speedup) jitter
  multiplicatively instead, so they fall back to the relative
  throughput floor (baseline * (1 - tol)).

* Recovery times (``*.recovery_ms``, the fault-recovery bench): these are
  *simulated* milliseconds, so machine speed does not enter at all — only
  the relative tolerance plus a one-bucket absolute slack (RECOVERY_SLACK_MS)
  for bucket-boundary jitter. A baseline < 0 means the scheme never
  recovered (by design for ECMP) and the row is informational; a current
  value < 0 against a recovering baseline is a hard FAIL — the scheme lost
  its ability to recover, which no tolerance forgives.

* Memory ceilings (``*.rss_mb``, the scale bench and the per-artifact engine
  gauge): current peak RSS must stay under baseline * (1 + tol) +
  RSS_SLACK_MB. The absolute slack absorbs allocator/page-size differences
  between machines; a real leak or a structurally bigger engine blows
  through both.

Every name that matches no family is printed as an ``[info]`` row, so a
typo'd metric never silently skips enforcement. Metrics present in only one
of the two files are reported but non-fatal: benches gain and lose counters
across PRs, and the baseline is refreshed by re-running ./run_benches.sh
(artifacts land at the repo root by default).

Env overrides: BENCH_CHECK_TOLERANCE (relative, default 0.25) and
BENCH_CHECK_RATIO_SLACK (absolute band for ``*_ratio`` rows, default 0.02 —
raise for cross-topology ratios on unknown hardware).

Exit status: 0 = all checks pass, 1 = at least one regression, 2 = usage or
parse error.
"""

import json
import os
import sys

ALLOC_SLACK = 0.01  # absolute allocs-per-event slack for amortized housekeeping
RATIO_SLACK = 0.02  # absolute band for same-run A/B overhead ratios
RECOVERY_SLACK_MS = 50.0  # one FCT bucket of boundary jitter for recovery times
RSS_SLACK_MB = 32.0  # absolute peak-RSS slack for allocator/page-size drift
DEFAULT_TOLERANCE = 0.25


def load_values(path):
    with open(path) as f:
        doc = json.load(f)
    vals = {}
    for entry in doc.get("values", []):
        name, value = entry.get("name"), entry.get("value")
        if isinstance(name, str) and isinstance(value, (int, float)):
            vals[name] = float(value)
    if not vals:
        raise ValueError(f"{path}: no 'values' entries to check")
    return vals


def is_alloc(name):
    return name.endswith(".allocs_per_event") or name.endswith(".allocs_per_pkt")


def is_throughput(name):
    return name.endswith("_per_sec")


def is_ratio(name):
    return name.endswith("_ratio")


def is_latency(name):
    tail = name.rsplit(".", 1)[-1]
    return tail.startswith("ns_per_")


def is_recovery(name):
    return name.endswith(".recovery_ms")


def is_rss(name):
    return name.endswith(".rss_mb")


def check_one(name, b, c, tol, ratio_slack=RATIO_SLACK):
    """Apply the rule family `name` belongs to.

    Returns (status, detail): status is "ok", "FAIL", or "info" (no rule
    applies, or the rule declares the row informational). Pure so the rule
    dispatch is unit-testable (scripts/test_bench_check.py).
    """
    if is_alloc(name):
        limit = b + ALLOC_SLACK
        return ("FAIL" if c > limit else "ok",
                f"{c:.6g} (baseline {b:.6g}, limit {limit:.6g})")
    if is_ratio(name):
        # Parity guards sit near 1.0 and get the tight absolute band.
        # Magnitude ratios (e.g. the hybrid engine's ~50x wall-clock
        # speedup) jitter multiplicatively with machine noise, so a
        # 2-point absolute band would flag sub-percent drift; they get
        # the relative throughput floor instead.
        floor = b * (1.0 - tol) if b > 2.0 else b - ratio_slack
        return ("FAIL" if c < floor else "ok",
                f"{c:.6g} (baseline {b:.6g}, floor {floor:.6g})")
    if is_throughput(name):
        floor = b * (1.0 - tol)
        return ("FAIL" if c < floor else "ok",
                f"{c:.6g} (baseline {b:.6g}, floor {floor:.6g})")
    if is_latency(name):
        ceil = b / (1.0 - tol)
        return ("FAIL" if c > ceil else "ok",
                f"{c:.6g} (baseline {b:.6g}, ceiling {ceil:.6g})")
    if is_rss(name):
        ceil = b * (1.0 + tol) + RSS_SLACK_MB
        return ("FAIL" if c > ceil else "ok",
                f"{c:.6g} (baseline {b:.6g}, ceiling {ceil:.6g})")
    if is_recovery(name):
        if b < 0:
            # Baseline never recovers (ECMP has no edge state to repair);
            # nothing to hold the current run to.
            return ("info", f"{c:.6g} (baseline never recovers)")
        ceil = b * (1.0 + tol) + RECOVERY_SLACK_MS
        bad = c < 0 or c > ceil
        shown = "never" if c < 0 else f"{c:.6g}"
        return ("FAIL" if bad else "ok",
                f"{shown} (baseline {b:.6g}, ceiling {ceil:.6g})")
    # No family matched: say so out loud instead of silently skipping, so a
    # renamed metric is visible in the CI log rather than unenforced.
    return ("info", f"{c:.6g} (baseline {b:.6g}, no rule; informational)")


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    tol = float(os.environ.get("BENCH_CHECK_TOLERANCE", DEFAULT_TOLERANCE))
    ratio_slack = float(
        os.environ.get("BENCH_CHECK_RATIO_SLACK", RATIO_SLACK))
    try:
        base = load_values(argv[1])
        cur = load_values(argv[2])
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"bench_check: {e}", file=sys.stderr)
        return 2

    failures = []
    checked = 0
    for name in sorted(set(base) | set(cur)):
        if name not in base or name not in cur:
            side = "baseline" if name not in cur else "current"
            print(f"  [skip] {name}: only in {side}")
            continue
        status, detail = check_one(name, base[name], cur[name], tol,
                                   ratio_slack)
        print(f"  [{status}] {name}: {detail}")
        if status != "info":
            checked += 1
        if status == "FAIL":
            failures.append(name)

    if checked == 0:
        print("bench_check: no comparable perf metrics found", file=sys.stderr)
        return 2
    if failures:
        print(f"bench_check: {len(failures)}/{checked} checks FAILED: "
              + ", ".join(failures), file=sys.stderr)
        return 1
    print(f"bench_check: all {checked} checks passed (tolerance {tol:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
