// Full web-search load-balancing comparison with CLI control: pick schemes,
// load, topology symmetry and scale from the command line. This is the
// general-purpose driver behind the Fig. 4/8 experiments, exposed as an
// example of composing the public API directly.
//
//   ./websearch_loadbalance [--load 70] [--asymmetric] [--jobs 40]
//                           [--conns 2] [--seeds 1] [--ns2]
//                           [--schemes ecmp,edge-flowlet,clove-ecn,...]
//
// Run with CLOVE_FLIGHT_RECORDER=sampled (or =full) to append, per scheme,
// the flight recorder's view of the run: per-spine traffic shares built from
// actual packet provenance plus the four invariant audit counters.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "stats/stats.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/scope.hpp"

namespace {

/// One line of provenance per scheme: where the bytes actually went, and
/// whether the always-on auditors stayed clean. Uses the recorder's learned
/// node names, so call while the scheme's last run is still current.
void print_flight_summary(const char* scheme,
                          const clove::telemetry::FlightSummary& fs) {
  const clove::telemetry::FlightRecorder* fr = clove::telemetry::flight();
  std::uint64_t total_bytes = 0;
  for (const auto& p : fs.paths) total_bytes += p.bytes;
  std::printf("  %-13s %llu pkts, %llu journeys (recon %.1f%%), %llu flowlets",
              scheme, static_cast<unsigned long long>(fs.packets_seen),
              static_cast<unsigned long long>(fs.journeys_started),
              fs.reconstruction_rate() * 100.0,
              static_cast<unsigned long long>(fs.flowlets));
  if (fr != nullptr && total_bytes > 0) {
    std::printf(" |");
    for (const auto& p : fs.paths) {
      std::printf(" via %s %.1f%%", fr->node_name(p.via).c_str(),
                  100.0 * static_cast<double>(p.bytes) /
                      static_cast<double>(total_bytes));
    }
  }
  std::printf(" | audits c=%llu fr=%llu vr=%llu em=%llu %s\n",
              static_cast<unsigned long long>(fs.audit.conservation),
              static_cast<unsigned long long>(fs.audit.flowlet_reorder),
              static_cast<unsigned long long>(fs.audit.vm_reorder),
              static_cast<unsigned long long>(fs.audit.ecn_mask),
              fs.audit.total() == 0 ? "[clean]" : "[VIOLATIONS]");
}

clove::harness::Scheme parse_scheme(const std::string& name) {
  using clove::harness::Scheme;
  if (name == "ecmp") return Scheme::kEcmp;
  if (name == "edge-flowlet") return Scheme::kEdgeFlowlet;
  if (name == "clove-ecn") return Scheme::kCloveEcn;
  if (name == "clove-int") return Scheme::kCloveInt;
  if (name == "clove-latency") return Scheme::kCloveLatency;
  if (name == "presto") return Scheme::kPresto;
  if (name == "mptcp") return Scheme::kMptcp;
  if (name == "conga") return Scheme::kConga;
  if (name == "letflow") return Scheme::kLetFlow;
  std::fprintf(stderr, "unknown scheme '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace clove;

  double load = 0.7;
  bool asymmetric = false;
  bool ns2 = false;
  int jobs = 40, conns = 2, seeds = 1;
  std::vector<harness::Scheme> schemes = {
      harness::Scheme::kEcmp, harness::Scheme::kEdgeFlowlet,
      harness::Scheme::kCloveEcn, harness::Scheme::kMptcp,
      harness::Scheme::kPresto};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--load") {
      load = std::atof(next()) / 100.0;
    } else if (arg == "--asymmetric") {
      asymmetric = true;
    } else if (arg == "--ns2") {
      ns2 = true;
    } else if (arg == "--jobs") {
      jobs = std::atoi(next());
    } else if (arg == "--conns") {
      conns = std::atoi(next());
    } else if (arg == "--seeds") {
      seeds = std::atoi(next());
    } else if (arg == "--schemes") {
      schemes.clear();
      std::stringstream ss(next());
      std::string item;
      while (std::getline(ss, item, ',')) schemes.push_back(parse_scheme(item));
    } else {
      std::fprintf(stderr, "usage: %s [--load P] [--asymmetric] [--ns2] "
                           "[--jobs N] [--conns N] [--seeds N] "
                           "[--schemes a,b,c]\n",
                   argv[0]);
      return 1;
    }
  }

  std::printf("web-search workload @ %.0f%% load, %s fabric, profile=%s\n",
              load * 100, asymmetric ? "asymmetric" : "symmetric",
              ns2 ? "ns2" : "testbed");
  std::printf("%d jobs/conn x %d conns/client x %d seed(s)\n\n", jobs, conns,
              seeds);

  const bool flight_on =
      telemetry::FlightConfig::from_env().mode != telemetry::FlightMode::kOff;

  stats::Table table({"scheme", "avg FCT (s)", "mice avg (s)", ">10MB avg (s)",
                      "p99 (s)", "timeouts", "drops"});
  for (harness::Scheme s : schemes) {
    double avg = 0, mice = 0, elep = 0, p99 = 0;
    std::uint64_t timeouts = 0, drops = 0;
    telemetry::FlightSummary flight{};
    for (int seed = 0; seed < seeds; ++seed) {
      harness::ExperimentConfig cfg =
          ns2 ? harness::make_ns2_profile() : harness::make_testbed_profile();
      cfg.scheme = s;
      cfg.asymmetric = asymmetric;
      cfg.seed = static_cast<std::uint64_t>(seed) * 7919 + 1;
      workload::ClientServerConfig wl;
      wl.load = load;
      wl.jobs_per_conn = jobs;
      wl.conns_per_client = conns;
      auto r = harness::run_fct_experiment(cfg, wl);
      avg += r.avg_fct_s / seeds;
      mice += r.mice_avg_fct_s / seeds;
      elep += r.elephant_avg_fct_s / seeds;
      p99 += r.p99_fct_s / seeds;
      timeouts += r.timeouts;
      drops += r.drops;
      flight = r.flight;  // last seed's provenance (each run resets the
                          // recorder, so only the latest snapshot is live)
    }
    table.add_row({harness::scheme_name(s), stats::Table::fmt(avg),
                   stats::Table::fmt(mice), stats::Table::fmt(elep),
                   stats::Table::fmt(p99), std::to_string(timeouts),
                   std::to_string(drops)});
    if (flight_on) {
      print_flight_summary(harness::scheme_name(s).c_str(), flight);
    } else {
      std::printf(".");
    }
    std::fflush(stdout);
  }
  std::printf("\n\n");
  table.print();
  if (!flight_on) {
    std::printf(
        "\n(rerun with CLOVE_FLIGHT_RECORDER=sampled for per-scheme path "
        "provenance and invariant audits)\n");
  }
  return 0;
}
