// Link-failure recovery demo (§3.1/§5.2): run steady web-search traffic
// under Clove-ECN, fail an S2-L2 fabric link mid-run, and watch
//   1. routing recompute at the switches (ECMP next-hop sets shrink),
//   2. the periodic traceroute rounds rediscover the port->path mapping,
//   3. the Clove-ECN weights shift away from the S2 bottleneck.
//
// The telemetry trace ring captures the whole sequence as structured
// events; the demo reconstructs the client's S2 weight share over time
// from the `clove.weight` event stream alone, and (with CLOVE_JSON_OUT
// set) exports the capture as JSONL + chrome://tracing JSON.
//
//   ./link_failure_recovery
//   CLOVE_JSON_OUT=out ./link_failure_recovery   # also dump trace files

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <string_view>

#include "harness/experiment.hpp"
#include "lb/clove_ecn.hpp"
#include "stats/timeseries.hpp"
#include "telemetry/artifact.hpp"
#include "telemetry/hub.hpp"
#include "workload/client_server.hpp"

int main() {
  using namespace clove;

  harness::ExperimentConfig cfg = harness::make_testbed_profile();
  cfg.scheme = harness::Scheme::kCloveEcn;
  cfg.discovery.probe_interval = 250 * sim::kMillisecond;
  // Keep a marked path on the "congested" list for longer than the per-path
  // feedback inter-arrival time (~15ms here), so weight removed from the
  // bottleneck is not spread right back onto it at the next reduction.
  cfg.clove_congestion_expiry = 20 * sim::kMillisecond;

  // Capture the decisions that tell the recovery story: WRR weight updates,
  // topology changes and TCP loss recovery. (Feedback/flowlet events run to
  // millions here and would evict the interesting window from the ring.)
  telemetry::hub().set_enabled(true);
  telemetry::hub().trace().set_capacity(1u << 18);
  telemetry::hub().trace().set_filter(
      static_cast<unsigned>(telemetry::Category::kWeight) |
      static_cast<unsigned>(telemetry::Category::kTopology) |
      static_cast<unsigned>(telemetry::Category::kTcp));
  telemetry::hub().begin_run();

  harness::Testbed tb(cfg);
  tb.start_discovery();

  // Mark ECN only on fabric ports. Marks from shared edge hops (the
  // leaf->host downlinks) carry no path signal — every path to a host
  // crosses the same last hop — so for a weight-adaptation demo they are
  // pure noise; the paper's testbed likewise marks at the switches' fabric
  // ports (§5). Host NIC egress never marks (see build_leaf_spine).
  std::set<net::LinkId> fabric_ids;
  for (auto& per_leaf : tb.fabric().fabric_links) {
    for (auto& per_spine : per_leaf) {
      for (net::Link* l : per_spine) {
        fabric_ids.insert(l->id());
        fabric_ids.insert(tb.topology().reverse_of(l)->id());
      }
    }
  }
  for (const auto& l : tb.topology().links()) {
    if (fabric_ids.count(l->id()) == 0) l->set_ecn_marking(false);
  }

  workload::ClientServerConfig wl;
  // 16 clients x 10G x 0.45 = 72G offered. Pre-failure the fabric has 160G
  // both ways — marks are rare everywhere. After one S2-L2 link fails, a
  // 50% S2 weight share would put 36G on the surviving 40G link (~90% hot,
  // marking hard) while each S1 link sits at ~45%: the ECN feedback rate
  // becomes strongly path-differentiated and the weights must move off S2
  // toward the 33% capacity share.
  wl.load = 0.45;
  wl.jobs_per_conn = 500;
  wl.conns_per_client = 2;
  wl.tcp = cfg.tcp;
  wl.start_time = cfg.traffic_start;
  workload::ClientServerWorkload ws(tb.simulator(), wl, tb.clients(),
                                    tb.servers());
  ws.start([&] { tb.simulator().stop(); });

  auto* client = tb.clients()[0];
  const net::IpAddr s2 = tb.fabric().spines[1]->ip();

  // Watch the surviving S2->L2 link's queue around the failure.
  stats::TimeSeriesSet watch(tb.simulator());
  net::Link* survivor = tb.fabric().fabric_links[1][1][1];
  net::Link* survivor_down = tb.topology().reverse_of(survivor);
  watch.add("s2_l2_queue_pkts",
            [survivor_down] {
              return static_cast<double>(survivor_down->queue_bytes()) / 1578.0;
            },
            sim::milliseconds(1));
  watch.add("s2_l2_utilization",
            [survivor_down] { return survivor_down->utilization(); },
            sim::milliseconds(1));
  watch.start_all();

  // Periodically report how much WRR weight this client places on paths
  // through S2 (averaged over the servers it has discovered paths to).
  auto report = [&](const char* tag) {
    auto* pol = static_cast<lb::CloveEcnPolicy*>(&client->policy());
    double s2_mass = 0.0, total = 0.0;
    int dsts = 0;
    for (auto* srv : tb.servers()) {
      const overlay::PathSet* ps = client->discovery().paths(srv->ip());
      if (ps == nullptr) continue;
      const auto w = pol->weights(srv->ip());
      if (w.size() != ps->paths.size()) continue;
      ++dsts;
      for (std::size_t i = 0; i < w.size(); ++i) {
        total += w[i];
        for (const auto& hop : ps->paths[i].hops) {
          if (hop.node == s2) {
            s2_mass += w[i];
            break;
          }
        }
      }
    }
    std::printf("[%8s] t=%-10s dsts=%d  weight via S2: %4.1f%%  (capacity "
                "share after failure: 33.3%%)\n",
                tag, sim::format_time(tb.simulator().now()).c_str(), dsts,
                total > 0 ? 100.0 * s2_mass / total : 0.0);
  };

  const sim::Time fail_at = sim::milliseconds(300);
  tb.simulator().schedule_at(fail_at, [&] {
    std::printf("\n*** failing one S2-L2 40G link at t=%s ***\n\n",
                sim::format_time(fail_at).c_str());
    tb.fail_s2_l2_link();
  });
  for (int i = 1; i <= 20; ++i) {
    tb.simulator().schedule_at(i * sim::milliseconds(200), [&, i] {
      report(i * 200 <= 300 ? "pre-fail" : "recovery");
    });
  }

  tb.simulator().run(cfg.max_sim_time);

  std::printf("\nworkload finished: %llu/%llu jobs, avg FCT %.3fs\n",
              static_cast<unsigned long long>(ws.jobs_done()),
              static_cast<unsigned long long>(ws.jobs_total()),
              ws.fct().all().mean());
  const auto* q = watch.find("s2_l2_queue_pkts");
  std::printf("surviving S2->L2 link queue: pre-failure mean %.1f pkts, "
              "first 100ms after failure %.1f pkts, last 100ms %.1f pkts\n",
              q->mean_between(0, fail_at),
              q->mean_between(fail_at, fail_at + sim::milliseconds(100)),
              q->mean_between(tb.simulator().now() - sim::milliseconds(100),
                              tb.simulator().now()));
  std::printf("route recomputations: %d, discovery rounds at %s: %d\n",
              tb.topology().route_epoch(), client->name().c_str(),
              client->discovery().rounds_completed());

  std::printf("\nfabric link scoreboard (downstream spine->L2 direction):\n");
  for (std::size_t s = 0; s < tb.fabric().spines.size(); ++s) {
    for (std::size_t k = 0; k < tb.fabric().fabric_links[1][s].size(); ++k) {
      net::Link* up = tb.fabric().fabric_links[1][s][k];
      const net::Link* down = tb.topology().reverse_of(up);
      const auto& st = down->stats();
      std::printf("  %-12s tx=%9llu pkts  ecn_marks=%8llu  drops=%6llu%s\n",
                  down->name().c_str(),
                  static_cast<unsigned long long>(st.tx_packets),
                  static_cast<unsigned long long>(st.ecn_marks),
                  static_cast<unsigned long long>(st.drops_overflow),
                  down->is_down() ? "  [FAILED]" : "");
    }
  }

  // -------------------------------------------------------------------
  // Replay the decision trace: reconstruct this client's weight share on
  // S2 paths purely from the captured `clove.weight` events — the same
  // story report() told from live policy state, now from telemetry alone.
  // -------------------------------------------------------------------
  const telemetry::TraceLog& ring = telemetry::hub().trace();
  std::printf("\ntrace ring: %llu events captured (%llu recorded, %llu "
              "overwritten)\n",
              static_cast<unsigned long long>(ring.size()),
              static_cast<unsigned long long>(ring.recorded_total()),
              static_cast<unsigned long long>(ring.dropped_oldest()));
  for (const auto* ev :
       ring.events(static_cast<unsigned>(telemetry::Category::kTopology))) {
    std::printf("  [topology] t=%-10s %-22s %s\n",
                sim::format_time(ev->t).c_str(), ev->name.c_str(),
                ev->detail.c_str());
  }

  // Replay the weight events oldest-first. Every `clove.weight` event is
  // self-describing: detail "dst D via SPINE ecn_reduced|spread|remap",
  // value = post-update weight, id = encap source port. "remap" batches
  // (one per path, emitted when a traceroute round installs a new mapping)
  // retire the ports of earlier rounds, so the reconstruction survives the
  // periodic port remapping. Unlike report() above — which averages live
  // policy state over every discovered destination — the replay counts only
  // pairs that carried traffic: they alone receive feedback events.
  struct PortW {
    double weight;
    bool via_s2;
  };
  using PairKey = std::pair<std::string, net::IpAddr>;
  std::map<PairKey, std::map<std::uint16_t, PortW>> pairs;
  std::set<PairKey> active;
  PairKey remap_key;
  bool in_remap = false;
  std::uint64_t weight_events = 0;

  // Running weight sums over active pairs, updated incrementally so the
  // share can be integrated over time (time-weighted window averages are
  // far less noisy than point samples of the churning WRR state).
  double s2_mass = 0.0, total = 0.0;
  double integral = 0.0;
  sim::Time win_active = 0;  ///< time with >=1 active pair in this window
  sim::Time prev_t = 0, win_start = 0;
  const sim::Time win = 250 * sim::kMillisecond;
  double pre_sum = 0.0, post_sum = 0.0;
  sim::Time pre_t = 0, post_t = 0;
  std::printf("\naggregate S2 weight share of active (client,dst) pairs, "
              "replayed from clove.weight events (250ms averages):\n");
  // Attribute the span [from, to) at the current share to the window
  // integral and to the pre/post-failure running averages. Spans before the
  // first weight event (no active pairs yet) carry no information and are
  // skipped entirely.
  auto add_span = [&](sim::Time from, sim::Time to, double share) {
    if (total <= 0.0 || to <= from) return;
    integral += share * static_cast<double>(to - from);
    win_active += to - from;
    const sim::Time pre_end = std::min(to, std::max(from, fail_at));
    pre_sum += share * static_cast<double>(pre_end - from);
    pre_t += pre_end - from;
    post_sum += share * static_cast<double>(to - pre_end);
    post_t += to - pre_end;
  };
  auto advance_to = [&](sim::Time t) {
    const double share = total > 0.0 ? s2_mass / total : 0.0;
    while (t >= win_start + win) {
      const sim::Time win_end = win_start + win;
      add_span(prev_t, win_end, share);
      if (win_active > 0) {
        std::printf("  [%-10s .. %-10s)  S2 share %5.1f%%%s\n",
                    sim::format_time(win_start).c_str(),
                    sim::format_time(win_end).c_str(),
                    100.0 * integral / static_cast<double>(win_active),
                    win_end <= fail_at ? "  pre-failure" : "");
      }
      prev_t = win_end;
      win_start = win_end;
      integral = 0.0;
      win_active = 0;
    }
    add_span(prev_t, t, share);
    prev_t = t;
  };
  // Mutate one (pair, port) entry, keeping the running sums in sync.
  auto upsert = [&](const PairKey& key, std::uint16_t port, PortW pw) {
    PortW& slot = pairs[key][port];
    if (active.count(key) != 0) {
      total += pw.weight - slot.weight;
      if (slot.via_s2) s2_mass -= slot.weight;
      if (pw.via_s2) s2_mass += pw.weight;
    }
    slot = pw;
  };
  for (const auto* ev :
       ring.events(static_cast<unsigned>(telemetry::Category::kWeight))) {
    net::IpAddr dst = 0, via = 0;
    char tag[16] = {0};
    if (std::sscanf(ev->detail.c_str(), "dst %u via %u %15s", &dst, &via,
                    tag) != 3) {
      continue;
    }
    // Remap events are stamped with the policy's last data-path timestamp,
    // which can lag interleaved feedback events slightly — keep the replay
    // clock monotonic.
    advance_to(std::max(ev->t, prev_t));
    ++weight_events;
    const PairKey key{ev->node, dst};
    const bool remap = std::string_view(tag) == "remap";
    if (remap && (!in_remap || key != remap_key)) {
      // New discovery round for this pair: retire the old ports.
      for (const auto& [port, pw] : pairs[key]) {
        if (active.count(key) != 0) {
          total -= pw.weight;
          if (pw.via_s2) s2_mass -= pw.weight;
        }
      }
      pairs[key].clear();
      remap_key = key;
    }
    in_remap = remap;
    if (!remap && active.insert(key).second) {
      // Pair just became active: its carried remap state starts counting.
      for (const auto& [port, pw] : pairs[key]) {
        total += pw.weight;
        if (pw.via_s2) s2_mass += pw.weight;
      }
    }
    upsert(key, static_cast<std::uint16_t>(ev->id), PortW{ev->value, via == s2});
  }
  advance_to(win_start + win);  // flush the last partial window
  std::printf("  (%llu clove.weight events replayed; S2 carries 2 of 4 "
              "uniform paths pre-failure, 1 of 3 live fabric links after)\n",
              static_cast<unsigned long long>(weight_events));
  std::printf("  time-averaged S2 share: %.1f%% before the failure, %.1f%% "
              "after\n",
              pre_t > 0 ? 100.0 * pre_sum / static_cast<double>(pre_t) : 0.0,
              post_t > 0 ? 100.0 * post_sum / static_cast<double>(post_t) : 0.0);

  // Optional machine-readable exports of the full capture.
  const std::string out_dir = telemetry::json_out_dir();
  if (!out_dir.empty()) {
    const std::string jsonl = telemetry::write_text_artifact(
        out_dir, "link_failure_trace.jsonl", ring.to_jsonl());
    const std::string chrome = telemetry::write_text_artifact(
        out_dir, "link_failure_trace.chrome.json", ring.to_chrome_trace());
    std::printf("\ntrace exports: %s\n               %s\n", jsonl.c_str(),
                chrome.c_str());
  }
  return 0;
}
