// Link-failure recovery demo (§3.1/§5.2): run steady web-search traffic
// under Clove-ECN, fail an S2-L2 fabric link mid-run, and watch
//   1. routing recompute at the switches (ECMP next-hop sets shrink),
//   2. the periodic traceroute rounds rediscover the port->path mapping,
//   3. the Clove-ECN weights shift away from the S2 bottleneck.
//
//   ./link_failure_recovery

#include <cstdio>

#include "harness/experiment.hpp"
#include "lb/clove_ecn.hpp"
#include "stats/timeseries.hpp"
#include "workload/client_server.hpp"

int main() {
  using namespace clove;

  harness::ExperimentConfig cfg = harness::make_testbed_profile();
  cfg.scheme = harness::Scheme::kCloveEcn;
  cfg.discovery.probe_interval = 250 * sim::kMillisecond;

  harness::Testbed tb(cfg);
  tb.start_discovery();

  workload::ClientServerConfig wl;
  wl.load = 0.6;
  wl.jobs_per_conn = 120;
  wl.conns_per_client = 2;
  wl.tcp = cfg.tcp;
  wl.start_time = cfg.traffic_start;
  workload::ClientServerWorkload ws(tb.simulator(), wl, tb.clients(),
                                    tb.servers());
  ws.start([&] { tb.simulator().stop(); });

  auto* client = tb.clients()[0];
  const net::IpAddr s2 = tb.fabric().spines[1]->ip();

  // Watch the surviving S2->L2 link's queue around the failure.
  stats::TimeSeriesSet watch(tb.simulator());
  net::Link* survivor = tb.fabric().fabric_links[1][1][1];
  net::Link* survivor_down = tb.topology().reverse_of(survivor);
  watch.add("s2_l2_queue_pkts",
            [survivor_down] {
              return static_cast<double>(survivor_down->queue_bytes()) / 1578.0;
            },
            sim::milliseconds(1));
  watch.add("s2_l2_utilization",
            [survivor_down] { return survivor_down->utilization(); },
            sim::milliseconds(1));
  watch.start_all();

  // Periodically report how much WRR weight this client places on paths
  // through S2 (averaged over the servers it has discovered paths to).
  auto report = [&](const char* tag) {
    auto* pol = static_cast<lb::CloveEcnPolicy*>(&client->policy());
    double s2_mass = 0.0, total = 0.0;
    int dsts = 0;
    for (auto* srv : tb.servers()) {
      const overlay::PathSet* ps = client->discovery().paths(srv->ip());
      if (ps == nullptr) continue;
      const auto w = pol->weights(srv->ip());
      if (w.size() != ps->paths.size()) continue;
      ++dsts;
      for (std::size_t i = 0; i < w.size(); ++i) {
        total += w[i];
        for (const auto& hop : ps->paths[i].hops) {
          if (hop.node == s2) {
            s2_mass += w[i];
            break;
          }
        }
      }
    }
    std::printf("[%8s] t=%-10s dsts=%d  weight via S2: %4.1f%%  (capacity "
                "share after failure: 33.3%%)\n",
                tag, sim::format_time(tb.simulator().now()).c_str(), dsts,
                total > 0 ? 100.0 * s2_mass / total : 0.0);
  };

  const sim::Time fail_at = sim::milliseconds(300);
  tb.simulator().schedule_at(fail_at, [&] {
    std::printf("\n*** failing one S2-L2 40G link at t=%s ***\n\n",
                sim::format_time(fail_at).c_str());
    tb.fail_s2_l2_link();
  });
  for (int i = 1; i <= 12; ++i) {
    tb.simulator().schedule_at(i * sim::milliseconds(100), [&, i] {
      report(i * 100 <= 300 ? "pre-fail" : "recovery");
    });
  }

  tb.simulator().run(cfg.max_sim_time);

  std::printf("\nworkload finished: %llu/%llu jobs, avg FCT %.3fs\n",
              static_cast<unsigned long long>(ws.jobs_done()),
              static_cast<unsigned long long>(ws.jobs_total()),
              ws.fct().all().mean());
  const auto* q = watch.find("s2_l2_queue_pkts");
  std::printf("surviving S2->L2 link queue: pre-failure mean %.1f pkts, "
              "first 100ms after failure %.1f pkts, last 100ms %.1f pkts\n",
              q->mean_between(0, fail_at),
              q->mean_between(fail_at, fail_at + sim::milliseconds(100)),
              q->mean_between(tb.simulator().now() - sim::milliseconds(100),
                              tb.simulator().now()));
  std::printf("route recomputations: %d, discovery rounds at %s: %d\n",
              tb.topology().route_epoch(), client->name().c_str(),
              client->discovery().rounds_completed());
  return 0;
}
