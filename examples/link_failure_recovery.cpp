// Link-failure recovery demo (§3.1/§5.2): run steady web-search traffic
// under Clove-ECN, fail an S2-L2 fabric link mid-run, and watch
//   1. routing recompute at the switches (ECMP next-hop sets shrink),
//   2. the periodic traceroute rounds rediscover the port->path mapping,
//   3. the Clove-ECN weights shift away from the S2 bottleneck.
//
// The flight recorder rides along in sampled mode and reconstructs the
// story from packet provenance alone: per-spine byte/flowlet shares per
// time bucket show the traffic draining off S2 after the failure, and the
// invariant auditors confirm nothing vanished or reached a VM out of
// order while routes churned. With CLOVE_JSON_OUT set the capture is
// exported as JSONL + chrome://tracing JSON + flight artifacts.
//
//   ./link_failure_recovery
//   CLOVE_JSON_OUT=out ./link_failure_recovery   # also dump trace files

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "lb/clove_ecn.hpp"
#include "stats/timeseries.hpp"
#include "telemetry/artifact.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/scope.hpp"
#include "workload/client_server.hpp"

int main() {
  using namespace clove;

  const sim::Time fail_at = sim::milliseconds(300);

  harness::ExperimentConfig cfg = harness::make_testbed_profile();
  cfg.scheme = harness::Scheme::kCloveEcn;
  cfg.discovery.probe_interval = 250 * sim::kMillisecond;
  // Keep a marked path on the "congested" list for longer than the per-path
  // feedback inter-arrival time (~15ms here), so weight removed from the
  // bottleneck is not spread right back onto it at the next reduction.
  cfg.clove_congestion_expiry = 20 * sim::kMillisecond;
  // The mid-run failure is a scheduled fault-plan event (DESIGN.md §8), not
  // a hand-rolled simulator callback: the S2-L2 link dies at t=300ms and
  // the fabric's routing keeps pointing at the corpse for another 30ms (the
  // convergence blackhole). Source-side path-health monitoring rides along
  // and evicts dead outer ports if keepalives go unanswered.
  cfg.path_health.enabled = true;
  cfg.fault_plan.route_convergence = 30 * sim::kMillisecond;
  cfg.fault_plan.add(fail_at, fault::FaultKind::kLinkDown, "L2->S2#0");

  // Capture the decisions that tell the recovery story: WRR weight updates,
  // topology changes and TCP loss recovery. (Feedback/flowlet events run to
  // millions here and would evict the interesting window from the ring.)
  telemetry::hub().set_enabled(true);
  telemetry::hub().trace().set_capacity(1u << 18);
  telemetry::hub().trace().set_filter(
      static_cast<unsigned>(telemetry::Category::kWeight) |
      static_cast<unsigned>(telemetry::Category::kTopology) |
      static_cast<unsigned>(telemetry::Category::kTcp));
  // Flight recorder in sampled mode: flow/flowlet records and the invariant
  // auditors cover every packet; hop-by-hop journeys (which attribute bytes
  // to physical paths) track every 4th packet — plenty for share estimates.
  telemetry::FlightConfig fc;
  fc.mode = telemetry::FlightMode::kSampled;
  fc.sample_every = 4;
  fc.usage_bucket = 100 * sim::kMillisecond;
  telemetry::current_scope().set_flight_config(fc);
  telemetry::hub().begin_run();

  harness::Testbed tb(cfg);
  tb.start_discovery();

  // Mark ECN only on fabric ports. Marks from shared edge hops (the
  // leaf->host downlinks) carry no path signal — every path to a host
  // crosses the same last hop — so for a weight-adaptation demo they are
  // pure noise; the paper's testbed likewise marks at the switches' fabric
  // ports (§5). Host NIC egress never marks (see build_leaf_spine).
  std::set<net::LinkId> fabric_ids;
  for (auto& per_leaf : tb.fabric().fabric_links) {
    for (auto& per_spine : per_leaf) {
      for (net::Link* l : per_spine) {
        fabric_ids.insert(l->id());
        fabric_ids.insert(tb.topology().reverse_of(l)->id());
      }
    }
  }
  for (const auto& l : tb.topology().links()) {
    if (fabric_ids.count(l->id()) == 0) l->set_ecn_marking(false);
  }

  workload::ClientServerConfig wl;
  // 16 clients x 10G x 0.45 = 72G offered. Pre-failure the fabric has 160G
  // both ways — marks are rare everywhere. After one S2-L2 link fails, a
  // 50% S2 weight share would put 36G on the surviving 40G link (~90% hot,
  // marking hard) while each S1 link sits at ~45%: the ECN feedback rate
  // becomes strongly path-differentiated and the weights must move off S2
  // toward the 33% capacity share.
  wl.load = 0.45;
  wl.jobs_per_conn = 500;
  wl.conns_per_client = 2;
  wl.tcp = cfg.tcp;
  wl.start_time = cfg.traffic_start;
  workload::ClientServerWorkload ws(tb.simulator(), wl, tb.clients(),
                                    tb.servers());
  ws.start([&] { tb.simulator().stop(); });

  auto* client = tb.clients()[0];
  const net::IpAddr s2 = tb.fabric().spines[1]->ip();

  // Watch the surviving S2->L2 link's queue around the failure.
  stats::TimeSeriesSet watch(tb.simulator());
  net::Link* survivor = tb.fabric().fabric_links[1][1][1];
  net::Link* survivor_down = tb.topology().reverse_of(survivor);
  watch.add("s2_l2_queue_pkts",
            [survivor_down] {
              return static_cast<double>(survivor_down->queue_bytes()) / 1578.0;
            },
            sim::milliseconds(1));
  watch.add("s2_l2_utilization",
            [survivor_down] { return survivor_down->utilization(); },
            sim::milliseconds(1));
  watch.start_all();

  // Periodically report how much WRR weight this client places on paths
  // through S2 (averaged over the servers it has discovered paths to).
  auto report = [&](const char* tag) {
    auto* pol = static_cast<lb::CloveEcnPolicy*>(&client->policy());
    double s2_mass = 0.0, total = 0.0;
    int dsts = 0;
    for (auto* srv : tb.servers()) {
      const overlay::PathSet* ps = client->discovery().paths(srv->ip());
      if (ps == nullptr) continue;
      const auto w = pol->weights(srv->ip());
      if (w.size() != ps->paths.size()) continue;
      ++dsts;
      for (std::size_t i = 0; i < w.size(); ++i) {
        total += w[i];
        for (const auto& hop : ps->paths[i].hops) {
          if (hop.node == s2) {
            s2_mass += w[i];
            break;
          }
        }
      }
    }
    std::printf("[%8s] t=%-10s dsts=%d  weight via S2: %4.1f%%  (capacity "
                "share after failure: 33.3%%)\n",
                tag, sim::format_time(tb.simulator().now()).c_str(), dsts,
                total > 0 ? 100.0 * s2_mass / total : 0.0);
  };

  // The injector (armed by the Testbed from cfg.fault_plan) does the actual
  // damage; this callback only narrates it.
  tb.simulator().schedule_at(fail_at, [&] {
    std::printf("\n*** fault plan: one S2-L2 40G link fails at t=%s "
                "(routes converge 30ms later) ***\n\n",
                sim::format_time(fail_at).c_str());
  });
  for (int i = 1; i <= 20; ++i) {
    tb.simulator().schedule_at(i * sim::milliseconds(200), [&, i] {
      report(i * 200 <= 300 ? "pre-fail" : "recovery");
    });
  }

  tb.simulator().run(cfg.max_sim_time);

  std::printf("\nworkload finished: %llu/%llu jobs, avg FCT %.3fs\n",
              static_cast<unsigned long long>(ws.jobs_done()),
              static_cast<unsigned long long>(ws.jobs_total()),
              ws.fct().all().mean());
  const auto* q = watch.find("s2_l2_queue_pkts");
  std::printf("surviving S2->L2 link queue: pre-failure mean %.1f pkts, "
              "first 100ms after failure %.1f pkts, last 100ms %.1f pkts\n",
              q->mean_between(0, fail_at),
              q->mean_between(fail_at, fail_at + sim::milliseconds(100)),
              q->mean_between(tb.simulator().now() - sim::milliseconds(100),
                              tb.simulator().now()));
  std::printf("route recomputations: %d, discovery rounds at %s: %d\n",
              tb.topology().route_epoch(), client->name().c_str(),
              client->discovery().rounds_completed());
  if (const auto* inj = tb.fault_injector()) {
    std::uint64_t keepalives = 0, evictions = 0, readmissions = 0;
    for (auto* c : tb.clients()) {
      if (const auto* ph = c->path_health()) {
        keepalives += ph->stats().keepalives_sent;
        evictions += ph->stats().evictions;
        readmissions += ph->stats().readmissions;
      }
    }
    std::printf("fault plan: %d event(s) applied, %d deferred route "
                "recompute(s); path health: %llu keepalives, %llu "
                "evictions, %llu readmissions\n",
                inj->stats().events_applied, inj->stats().route_recomputes,
                static_cast<unsigned long long>(keepalives),
                static_cast<unsigned long long>(evictions),
                static_cast<unsigned long long>(readmissions));
  }

  std::printf("\nfabric link scoreboard (downstream spine->L2 direction):\n");
  for (std::size_t s = 0; s < tb.fabric().spines.size(); ++s) {
    for (std::size_t k = 0; k < tb.fabric().fabric_links[1][s].size(); ++k) {
      net::Link* up = tb.fabric().fabric_links[1][s][k];
      const net::Link* down = tb.topology().reverse_of(up);
      const auto& st = down->stats();
      std::printf("  %-12s tx=%9llu pkts  ecn_marks=%8llu  drops=%6llu%s\n",
                  down->name().c_str(),
                  static_cast<unsigned long long>(st.tx_packets),
                  static_cast<unsigned long long>(st.ecn_marks),
                  static_cast<unsigned long long>(st.drops_overflow),
                  down->is_down() ? "  [FAILED]" : "");
    }
  }

  // -------------------------------------------------------------------
  // Flight-recorder view: the same recovery story, reconstructed from
  // per-packet path provenance instead of policy internals — per-spine
  // byte/flowlet shares per 100ms bucket, then the invariant audits.
  // -------------------------------------------------------------------
  const telemetry::TraceLog& ring = telemetry::hub().trace();
  std::printf("\ntrace ring: %llu events captured (%llu recorded, %llu "
              "overwritten)\n",
              static_cast<unsigned long long>(ring.size()),
              static_cast<unsigned long long>(ring.recorded_total()),
              static_cast<unsigned long long>(ring.dropped_oldest()));
  for (const auto* ev :
       ring.events(static_cast<unsigned>(telemetry::Category::kTopology))) {
    std::printf("  [topology] t=%-10s %-22s %s\n",
                sim::format_time(ev->t).c_str(), ev->name.c_str(),
                ev->detail.c_str());
  }

  telemetry::FlightRecorder* fr = telemetry::flight();
  const std::uint32_t s2_id = tb.fabric().spines[1]->id();

  // Per-bucket spine shares from the sampled journeys: every delivered
  // tracked packet attributed its bytes to the spine it crossed.
  std::printf("\nper-spine traffic shares from packet provenance "
              "(sampled 1-in-%llu, %sms buckets):\n",
              static_cast<unsigned long long>(fc.sample_every),
              std::to_string(fc.usage_bucket / sim::kMillisecond).c_str());
  const std::vector<telemetry::PathUsage> usage = fr->path_usage();
  std::map<sim::Time, std::map<std::uint32_t, telemetry::PathUsage>> buckets;
  for (const telemetry::PathUsage& pu : usage) buckets[pu.bucket_start][pu.via] = pu;
  double pre_bytes = 0.0, pre_s2 = 0.0, post_bytes = 0.0, post_s2 = 0.0;
  double pre_fl = 0.0, pre_fl_s2 = 0.0, post_fl = 0.0, post_fl_s2 = 0.0;
  for (const auto& [t, by_via] : buckets) {
    double bytes = 0.0, s2_b = 0.0, fl = 0.0, s2_fl = 0.0;
    for (const auto& [via, pu] : by_via) {
      bytes += static_cast<double>(pu.bytes);
      fl += static_cast<double>(pu.flowlets);
      if (via == s2_id) {
        s2_b += static_cast<double>(pu.bytes);
        s2_fl += static_cast<double>(pu.flowlets);
      }
    }
    if (bytes <= 0.0) continue;
    const bool post = t >= fail_at;
    (post ? post_bytes : pre_bytes) += bytes;
    (post ? post_s2 : pre_s2) += s2_b;
    (post ? post_fl : pre_fl) += fl;
    (post ? post_fl_s2 : pre_fl_s2) += s2_fl;
    std::printf("  [%-10s)  via S2: %5.1f%% of bytes, %5.1f%% of flowlets%s\n",
                sim::format_time(t).c_str(), 100.0 * s2_b / bytes,
                fl > 0.0 ? 100.0 * s2_fl / fl : 0.0,
                t + fc.usage_bucket <= fail_at ? "  pre-failure" : "");
  }
  std::printf("  S2 byte share: %.1f%% before the failure, %.1f%% after "
              "(capacity share after failure: 33.3%%)\n",
              pre_bytes > 0 ? 100.0 * pre_s2 / pre_bytes : 0.0,
              post_bytes > 0 ? 100.0 * post_s2 / post_bytes : 0.0);
  std::printf("  S2 flowlet share: %.1f%% before, %.1f%% after\n",
              pre_fl > 0 ? 100.0 * pre_fl_s2 / pre_fl : 0.0,
              post_fl > 0 ? 100.0 * post_fl_s2 / post_fl : 0.0);

  // The always-on invariant auditors rode through the failure: packets may
  // die on the failed link (accounted drops), but none may vanish silently,
  // arrive reordered within a flowlet, or leak ECN state into a guest.
  telemetry::FlightSummary fs = fr->summary(tb.simulator().now());
  std::printf("\nflight recorder: %llu packets seen, %llu journeys (%llu "
              "delivered, %llu dropped), %llu flowlets\n",
              static_cast<unsigned long long>(fs.packets_seen),
              static_cast<unsigned long long>(fs.journeys_started),
              static_cast<unsigned long long>(fs.delivered),
              static_cast<unsigned long long>(fs.dropped),
              static_cast<unsigned long long>(fs.flowlets));
  std::printf("invariant audits: conservation=%llu flowlet_reorder=%llu "
              "vm_reorder=%llu ecn_mask=%llu%s\n",
              static_cast<unsigned long long>(fs.audit.conservation),
              static_cast<unsigned long long>(fs.audit.flowlet_reorder),
              static_cast<unsigned long long>(fs.audit.vm_reorder),
              static_cast<unsigned long long>(fs.audit.ecn_mask),
              fs.audit.total() == 0 ? "  [all clean]" : "  [VIOLATIONS]");

  // Optional machine-readable exports of the full capture.
  const std::string out_dir = telemetry::json_out_dir();
  if (!out_dir.empty()) {
    const std::string jsonl = telemetry::write_text_artifact(
        out_dir, "link_failure_trace.jsonl", ring.to_jsonl());
    const std::string chrome = telemetry::write_text_artifact(
        out_dir, "link_failure_trace.chrome.json", ring.to_chrome_trace());
    telemetry::Json doc = fs.to_json();
    telemetry::Json names = telemetry::Json::object();
    for (const telemetry::PathUsage& pu : fs.paths)
      names.set(std::to_string(pu.via), telemetry::Json(fr->node_name(pu.via)));
    doc.set("node_names", std::move(names));
    const std::string flight = telemetry::write_json_artifact(
        out_dir, "FLIGHT_link_failure", doc);
    const std::string flows = telemetry::write_text_artifact(
        out_dir, "link_failure_flows.jsonl", fr->flows_jsonl());
    std::printf("\ntrace exports: %s\n               %s\n"
                "               %s\n               %s\n",
                jsonl.c_str(), chrome.c_str(), flight.c_str(), flows.c_str());
  }
  return 0;
}
