// Incast demo (§5.3): one client fetches a 10 MB object striped over n
// servers that respond simultaneously (partition-aggregate). Compares the
// client's achieved goodput under Clove-ECN, Edge-Flowlet and MPTCP —
// showing MPTCP's subflow burstiness hurting as fan-in grows.
//
//   ./incast_fanout [fanout] [requests]

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hpp"
#include "stats/stats.hpp"

int main(int argc, char** argv) {
  using namespace clove;

  const int fanout = argc > 1 ? std::atoi(argv[1]) : 8;
  const int requests = argc > 2 ? std::atoi(argv[2]) : 40;

  std::printf("incast: 10MB object over %d servers, %d requests\n\n", fanout,
              requests);

  stats::Table table({"scheme", "goodput (Gb/s)", "p99 request time (ms)"});
  for (harness::Scheme s :
       {harness::Scheme::kCloveEcn, harness::Scheme::kEdgeFlowlet,
        harness::Scheme::kMptcp}) {
    harness::ExperimentConfig cfg = harness::make_testbed_profile();
    cfg.scheme = s;
    harness::Testbed tb(cfg);
    tb.start_discovery();

    workload::IncastConfig ic;
    ic.fanout = fanout;
    ic.requests = requests;
    ic.tcp = cfg.tcp;
    ic.mptcp = cfg.mptcp;
    ic.use_mptcp = (s == harness::Scheme::kMptcp);
    ic.start_time = cfg.traffic_start;
    workload::IncastWorkload incast(tb.simulator(), ic, tb.clients()[0],
                                    tb.servers());
    incast.start([&] { tb.simulator().stop(); });
    tb.simulator().run(cfg.max_sim_time);

    table.add_row({harness::scheme_name(s),
                   stats::Table::fmt(incast.goodput_gbps(), 2),
                   stats::Table::fmt(
                       incast.request_durations().percentile(99) * 1000, 1)});
  }
  table.print();
  return 0;
}
