// Path discovery demo: builds the leaf-spine fabric, runs the traceroute
// daemon from one hypervisor, and prints the discovered mapping from
// encapsulation source ports to physical paths — the §3.1 mechanism that
// turns standard ECMP into an indirect source-routing primitive.
//
//   ./path_discovery [--fail-link]

#include <cstdio>
#include <cstring>

#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  using namespace clove;

  const bool fail_link = argc > 1 && std::strcmp(argv[1], "--fail-link") == 0;

  harness::ExperimentConfig cfg = harness::make_testbed_profile();
  cfg.scheme = harness::Scheme::kCloveEcn;
  cfg.asymmetric = fail_link;
  harness::Testbed tb(cfg);

  auto* src = tb.clients()[0];
  auto* dst = tb.servers()[0];
  std::printf("probing paths %s -> %s over the %s fabric...\n\n",
              src->name().c_str(), dst->name().c_str(),
              fail_link ? "ASYMMETRIC (S2-L2 link down)" : "symmetric");

  src->start_discovery({dst->ip()});
  tb.simulator().run(cfg.discovery.probe_timeout + sim::milliseconds(5));

  const overlay::PathSet* ps = src->discovery().paths(dst->ip());
  if (ps == nullptr) {
    std::printf("no paths discovered!\n");
    return 1;
  }

  std::printf("probes sent: %llu, paths selected: %zu\n\n",
              static_cast<unsigned long long>(src->discovery().probes_sent()),
              ps->size());
  for (const auto& path : ps->paths) {
    std::printf("  outer src port %5u  ->  ", path.port);
    for (std::size_t h = 0; h < path.hops.size(); ++h) {
      const net::Node* node = tb.topology().node_by_ip(path.hops[h].node);
      std::printf("%s%s(if%d)", h ? " -> " : "",
                  node ? node->name().c_str() : "?", path.hops[h].ingress);
    }
    std::printf("\n");
  }

  std::printf("\nverifying against the switches' actual ECMP hash...\n");
  for (const auto& path : ps->paths) {
    net::FiveTuple t{src->ip(), dst->ip(), path.port, overlay::kSttPort,
                     net::Proto::kStt};
    net::Switch* leaf = tb.fabric().leaves[0];
    const auto* route = leaf->route(dst->ip());
    net::Link* up =
        leaf->port((*route)[static_cast<std::size_t>(
            leaf->ecmp_port(t, route->size()))]);
    const bool ok = up->dst()->ip() == path.hops[1].node;
    std::printf("  port %5u -> first hop %-4s %s\n", path.port,
                up->dst()->name().c_str(), ok ? "[matches trace]" : "[MISMATCH]");
  }
  return 0;
}
