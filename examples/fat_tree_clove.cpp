// Fat-tree demo: Clove's topology-agnosticism (§3.1) on a 3-tier k-ary
// fat-tree. Builds a k=4 fat-tree of Clove hypervisors, discovers the
// (k/2)^2 link-disjoint cross-pod paths, runs cross-pod transfers under
// Clove-ECN, then fails a core link mid-run and shows rediscovery.
//
//   ./fat_tree_clove [k]

#include <cstdio>
#include <cstdlib>

#include "lb/clove_ecn.hpp"
#include "net/fat_tree.hpp"
#include "overlay/hypervisor.hpp"
#include "sim/simulator.hpp"
#include "transport/tcp.hpp"

int main(int argc, char** argv) {
  using namespace clove;

  const int k = argc > 1 ? std::atoi(argv[1]) : 4;
  sim::Simulator sim(1);
  net::Topology topo(sim);
  net::FatTreeConfig cfg;
  cfg.k = k;

  net::FatTree ft = net::build_fat_tree(
      topo, cfg, [&sim](net::Topology& t, const std::string& name, int) {
        overlay::HypervisorConfig h;
        h.discovery.probe_timeout = 5 * sim::kMillisecond;
        h.discovery.probe_interval = 100 * sim::kMillisecond;
        h.discovery.max_ttl = 8;
        h.discovery.sample_ports = 64;
        h.discovery.k_paths = 16;
        return static_cast<net::Node*>(t.add_host<overlay::Hypervisor>(
            name, sim, h, std::make_unique<lb::CloveEcnPolicy>()));
      });

  auto* src = static_cast<overlay::Hypervisor*>(ft.hosts_by_pod[0][0]);
  auto* dst = static_cast<overlay::Hypervisor*>(
      ft.hosts_by_pod[static_cast<std::size_t>(k - 1)][0]);

  std::printf("k=%d fat-tree: %zu hosts, %zu core switches, %d cross-pod "
              "paths expected\n\n",
              k, ft.host_count(), ft.core.size(), ft.cross_pod_paths());

  src->start_discovery({dst->ip()});
  dst->start_discovery({src->ip()});
  sim.run(sim::milliseconds(10));

  const overlay::PathSet* ps = src->discovery().paths(dst->ip());
  if (ps == nullptr) {
    std::printf("discovery failed\n");
    return 1;
  }
  std::printf("discovered %zu paths %s -> %s:\n", ps->size(),
              src->name().c_str(), dst->name().c_str());
  for (const auto& path : ps->paths) {
    std::printf("  port %5u: ", path.port);
    for (std::size_t h = 0; h < path.hops.size(); ++h) {
      const net::Node* n = topo.node_by_ip(path.hops[h].node);
      std::printf("%s%s", h ? " -> " : "", n ? n->name().c_str() : "?");
    }
    std::printf("\n");
  }

  // A cross-pod transfer under Clove-ECN.
  transport::TcpConfig tcfg;
  tcfg.min_rto = 10 * sim::kMillisecond;
  tcfg.ecn = true;
  transport::TcpSender tx(
      *src, net::FiveTuple{src->ip(), dst->ip(), 9000, 80, net::Proto::kTcp},
      tcfg);
  src->register_endpoint(tx.tuple(), &tx);
  sim::Time done_at = 0;
  const std::uint64_t bytes = 20'000'000;
  const sim::Time t0 = sim.now();
  tx.write(bytes, [&](sim::Time t) {
    done_at = t;
    sim.stop();
  });
  sim.run(sim::seconds(30.0));
  const double gbps =
      static_cast<double>(bytes) * 8.0 / sim::to_seconds(done_at - t0) / 1e9;
  std::printf("\n20MB cross-pod transfer: %.2f Gb/s (host links: %.0fG)\n",
              gbps, cfg.host_gbps);

  // Fail the core link the first discovered path uses, re-probe, and show
  // the new mapping avoids the dead core.
  sim.clear_stop();
  const net::IpAddr dead_core = ps->paths[0].hops[2].node;
  net::Link* victim = nullptr;
  for (const auto& l : topo.links()) {
    if (l->dst()->ip() == dead_core && !l->is_down()) {
      victim = l.get();
      break;
    }
  }
  if (victim != nullptr) {
    std::printf("\nfailing a link into core switch %s and re-probing...\n",
                topo.node_by_ip(dead_core)->name().c_str());
    topo.fail_connection(victim);
    src->discovery().probe_now(dst->ip());
    sim.run(sim.now() + sim::milliseconds(20));
    const overlay::PathSet* ps2 = src->discovery().paths(dst->ip());
    std::printf("rediscovered %zu paths (route epoch %d)\n",
                ps2 ? ps2->size() : 0, topo.route_epoch());
  }
  return 0;
}
