// Quickstart: build the paper's 2-tier leaf-spine testbed, run the
// web-search workload at 60% load under ECMP and under Clove-ECN, and
// compare average flow completion times.
//
//   ./quickstart [load_percent]
//
// This is the smallest end-to-end use of the public API: Testbed +
// ClientServerWorkload via harness::run_fct_experiment.

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hpp"
#include "stats/stats.hpp"

int main(int argc, char** argv) {
  using namespace clove;

  const double load = argc > 1 ? std::atof(argv[1]) / 100.0 : 0.6;

  workload::ClientServerConfig wl;
  wl.load = load;
  wl.jobs_per_conn = 30;
  wl.conns_per_client = 2;

  std::printf("Clove quickstart: web-search workload at %.0f%% load\n",
              load * 100);
  std::printf("topology: 2 leaves x 16 hosts @10G, 2 spines, 2x40G per pair\n\n");

  stats::Table table({"scheme", "avg FCT (s)", "p99 FCT (s)", "jobs",
                      "timeouts", "drops"});
  for (harness::Scheme s :
       {harness::Scheme::kEcmp, harness::Scheme::kCloveEcn}) {
    harness::ExperimentConfig cfg = harness::make_testbed_profile();
    cfg.scheme = s;
    auto r = harness::run_fct_experiment(cfg, wl);
    table.add_row({harness::scheme_name(s), stats::Table::fmt(r.avg_fct_s),
                   stats::Table::fmt(r.p99_fct_s), std::to_string(r.jobs),
                   std::to_string(r.timeouts), std::to_string(r.drops)});
  }
  table.print();
  return 0;
}
