# Empty dependencies file for link_failure_recovery.
# This may be replaced when dependencies are built.
