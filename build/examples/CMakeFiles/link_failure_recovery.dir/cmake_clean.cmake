file(REMOVE_RECURSE
  "CMakeFiles/link_failure_recovery.dir/link_failure_recovery.cpp.o"
  "CMakeFiles/link_failure_recovery.dir/link_failure_recovery.cpp.o.d"
  "link_failure_recovery"
  "link_failure_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_failure_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
