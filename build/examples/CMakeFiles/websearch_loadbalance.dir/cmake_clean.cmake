file(REMOVE_RECURSE
  "CMakeFiles/websearch_loadbalance.dir/websearch_loadbalance.cpp.o"
  "CMakeFiles/websearch_loadbalance.dir/websearch_loadbalance.cpp.o.d"
  "websearch_loadbalance"
  "websearch_loadbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/websearch_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
