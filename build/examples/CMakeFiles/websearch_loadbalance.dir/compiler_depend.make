# Empty compiler generated dependencies file for websearch_loadbalance.
# This may be replaced when dependencies are built.
