# Empty compiler generated dependencies file for fat_tree_clove.
# This may be replaced when dependencies are built.
