
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/fat_tree_clove.cpp" "examples/CMakeFiles/fat_tree_clove.dir/fat_tree_clove.cpp.o" "gcc" "examples/CMakeFiles/fat_tree_clove.dir/fat_tree_clove.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/clove_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/clove_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/clove_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/clove_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/clove_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/clove_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/clove_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/clove_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
