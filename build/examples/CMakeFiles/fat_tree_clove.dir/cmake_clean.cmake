file(REMOVE_RECURSE
  "CMakeFiles/fat_tree_clove.dir/fat_tree_clove.cpp.o"
  "CMakeFiles/fat_tree_clove.dir/fat_tree_clove.cpp.o.d"
  "fat_tree_clove"
  "fat_tree_clove.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fat_tree_clove.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
