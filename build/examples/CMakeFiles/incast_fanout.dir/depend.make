# Empty dependencies file for incast_fanout.
# This may be replaced when dependencies are built.
