file(REMOVE_RECURSE
  "CMakeFiles/incast_fanout.dir/incast_fanout.cpp.o"
  "CMakeFiles/incast_fanout.dir/incast_fanout.cpp.o.d"
  "incast_fanout"
  "incast_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incast_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
