
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adaptive_gap.cpp" "tests/CMakeFiles/clove_tests.dir/test_adaptive_gap.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_adaptive_gap.cpp.o.d"
  "/root/repo/tests/test_clove_policies.cpp" "tests/CMakeFiles/clove_tests.dir/test_clove_policies.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_clove_policies.cpp.o.d"
  "/root/repo/tests/test_conga_letflow.cpp" "tests/CMakeFiles/clove_tests.dir/test_conga_letflow.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_conga_letflow.cpp.o.d"
  "/root/repo/tests/test_fat_tree.cpp" "tests/CMakeFiles/clove_tests.dir/test_fat_tree.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_fat_tree.cpp.o.d"
  "/root/repo/tests/test_flowlet.cpp" "tests/CMakeFiles/clove_tests.dir/test_flowlet.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_flowlet.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/clove_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_hypervisor.cpp" "tests/CMakeFiles/clove_tests.dir/test_hypervisor.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_hypervisor.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/clove_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_invariants.cpp" "tests/CMakeFiles/clove_tests.dir/test_invariants.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_invariants.cpp.o.d"
  "/root/repo/tests/test_link.cpp" "tests/CMakeFiles/clove_tests.dir/test_link.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_link.cpp.o.d"
  "/root/repo/tests/test_mptcp.cpp" "tests/CMakeFiles/clove_tests.dir/test_mptcp.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_mptcp.cpp.o.d"
  "/root/repo/tests/test_packet.cpp" "tests/CMakeFiles/clove_tests.dir/test_packet.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_packet.cpp.o.d"
  "/root/repo/tests/test_policies.cpp" "tests/CMakeFiles/clove_tests.dir/test_policies.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_policies.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/clove_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_reorder.cpp" "tests/CMakeFiles/clove_tests.dir/test_reorder.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_reorder.cpp.o.d"
  "/root/repo/tests/test_sack.cpp" "tests/CMakeFiles/clove_tests.dir/test_sack.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_sack.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/clove_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/clove_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_switch.cpp" "tests/CMakeFiles/clove_tests.dir/test_switch.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_switch.cpp.o.d"
  "/root/repo/tests/test_tcp.cpp" "tests/CMakeFiles/clove_tests.dir/test_tcp.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_tcp.cpp.o.d"
  "/root/repo/tests/test_telemetry.cpp" "tests/CMakeFiles/clove_tests.dir/test_telemetry.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_telemetry.cpp.o.d"
  "/root/repo/tests/test_timeseries.cpp" "tests/CMakeFiles/clove_tests.dir/test_timeseries.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_timeseries.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/clove_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_traceroute.cpp" "tests/CMakeFiles/clove_tests.dir/test_traceroute.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_traceroute.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/clove_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/clove_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/clove_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/clove_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/clove_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/clove_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/clove_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/clove_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/clove_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/clove_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
