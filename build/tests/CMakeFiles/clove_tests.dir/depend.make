# Empty dependencies file for clove_tests.
# This may be replaced when dependencies are built.
