file(REMOVE_RECURSE
  "CMakeFiles/clove_overlay.dir/hypervisor.cpp.o"
  "CMakeFiles/clove_overlay.dir/hypervisor.cpp.o.d"
  "CMakeFiles/clove_overlay.dir/traceroute.cpp.o"
  "CMakeFiles/clove_overlay.dir/traceroute.cpp.o.d"
  "libclove_overlay.a"
  "libclove_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clove_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
