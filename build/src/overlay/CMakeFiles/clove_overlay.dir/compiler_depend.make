# Empty compiler generated dependencies file for clove_overlay.
# This may be replaced when dependencies are built.
