file(REMOVE_RECURSE
  "libclove_overlay.a"
)
