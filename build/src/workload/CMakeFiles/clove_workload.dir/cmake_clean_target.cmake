file(REMOVE_RECURSE
  "libclove_workload.a"
)
