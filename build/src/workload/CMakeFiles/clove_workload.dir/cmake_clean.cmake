file(REMOVE_RECURSE
  "CMakeFiles/clove_workload.dir/client_server.cpp.o"
  "CMakeFiles/clove_workload.dir/client_server.cpp.o.d"
  "CMakeFiles/clove_workload.dir/flow_size.cpp.o"
  "CMakeFiles/clove_workload.dir/flow_size.cpp.o.d"
  "libclove_workload.a"
  "libclove_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clove_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
