# Empty dependencies file for clove_workload.
# This may be replaced when dependencies are built.
