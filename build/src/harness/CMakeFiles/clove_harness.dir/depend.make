# Empty dependencies file for clove_harness.
# This may be replaced when dependencies are built.
