file(REMOVE_RECURSE
  "libclove_harness.a"
)
