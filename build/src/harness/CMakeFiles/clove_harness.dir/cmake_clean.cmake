file(REMOVE_RECURSE
  "CMakeFiles/clove_harness.dir/experiment.cpp.o"
  "CMakeFiles/clove_harness.dir/experiment.cpp.o.d"
  "libclove_harness.a"
  "libclove_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clove_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
