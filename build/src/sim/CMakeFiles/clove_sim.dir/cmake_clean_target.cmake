file(REMOVE_RECURSE
  "libclove_sim.a"
)
