# Empty dependencies file for clove_sim.
# This may be replaced when dependencies are built.
