file(REMOVE_RECURSE
  "CMakeFiles/clove_sim.dir/logging.cpp.o"
  "CMakeFiles/clove_sim.dir/logging.cpp.o.d"
  "CMakeFiles/clove_sim.dir/random.cpp.o"
  "CMakeFiles/clove_sim.dir/random.cpp.o.d"
  "CMakeFiles/clove_sim.dir/time.cpp.o"
  "CMakeFiles/clove_sim.dir/time.cpp.o.d"
  "libclove_sim.a"
  "libclove_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clove_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
