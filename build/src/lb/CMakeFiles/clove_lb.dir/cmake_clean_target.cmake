file(REMOVE_RECURSE
  "libclove_lb.a"
)
