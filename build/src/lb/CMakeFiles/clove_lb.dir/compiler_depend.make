# Empty compiler generated dependencies file for clove_lb.
# This may be replaced when dependencies are built.
