
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lb/clove_ecn.cpp" "src/lb/CMakeFiles/clove_lb.dir/clove_ecn.cpp.o" "gcc" "src/lb/CMakeFiles/clove_lb.dir/clove_ecn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/clove_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/clove_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
