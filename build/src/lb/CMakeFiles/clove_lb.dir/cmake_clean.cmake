file(REMOVE_RECURSE
  "CMakeFiles/clove_lb.dir/clove_ecn.cpp.o"
  "CMakeFiles/clove_lb.dir/clove_ecn.cpp.o.d"
  "libclove_lb.a"
  "libclove_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clove_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
