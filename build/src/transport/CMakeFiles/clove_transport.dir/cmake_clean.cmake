file(REMOVE_RECURSE
  "CMakeFiles/clove_transport.dir/mptcp.cpp.o"
  "CMakeFiles/clove_transport.dir/mptcp.cpp.o.d"
  "CMakeFiles/clove_transport.dir/tcp.cpp.o"
  "CMakeFiles/clove_transport.dir/tcp.cpp.o.d"
  "libclove_transport.a"
  "libclove_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clove_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
