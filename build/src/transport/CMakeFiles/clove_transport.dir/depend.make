# Empty dependencies file for clove_transport.
# This may be replaced when dependencies are built.
