file(REMOVE_RECURSE
  "libclove_transport.a"
)
