file(REMOVE_RECURSE
  "libclove_stats.a"
)
