file(REMOVE_RECURSE
  "CMakeFiles/clove_stats.dir/stats.cpp.o"
  "CMakeFiles/clove_stats.dir/stats.cpp.o.d"
  "CMakeFiles/clove_stats.dir/timeseries.cpp.o"
  "CMakeFiles/clove_stats.dir/timeseries.cpp.o.d"
  "libclove_stats.a"
  "libclove_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clove_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
