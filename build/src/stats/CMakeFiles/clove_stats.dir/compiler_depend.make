# Empty compiler generated dependencies file for clove_stats.
# This may be replaced when dependencies are built.
