file(REMOVE_RECURSE
  "CMakeFiles/clove_net.dir/conga_switch.cpp.o"
  "CMakeFiles/clove_net.dir/conga_switch.cpp.o.d"
  "CMakeFiles/clove_net.dir/fat_tree.cpp.o"
  "CMakeFiles/clove_net.dir/fat_tree.cpp.o.d"
  "CMakeFiles/clove_net.dir/link.cpp.o"
  "CMakeFiles/clove_net.dir/link.cpp.o.d"
  "CMakeFiles/clove_net.dir/packet.cpp.o"
  "CMakeFiles/clove_net.dir/packet.cpp.o.d"
  "CMakeFiles/clove_net.dir/switch.cpp.o"
  "CMakeFiles/clove_net.dir/switch.cpp.o.d"
  "CMakeFiles/clove_net.dir/topology.cpp.o"
  "CMakeFiles/clove_net.dir/topology.cpp.o.d"
  "libclove_net.a"
  "libclove_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clove_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
