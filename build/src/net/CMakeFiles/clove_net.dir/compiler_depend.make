# Empty compiler generated dependencies file for clove_net.
# This may be replaced when dependencies are built.
