file(REMOVE_RECURSE
  "libclove_net.a"
)
