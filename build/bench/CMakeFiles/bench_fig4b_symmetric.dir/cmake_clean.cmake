file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4b_symmetric.dir/bench_fig4b_symmetric.cpp.o"
  "CMakeFiles/bench_fig4b_symmetric.dir/bench_fig4b_symmetric.cpp.o.d"
  "bench_fig4b_symmetric"
  "bench_fig4b_symmetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_symmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
