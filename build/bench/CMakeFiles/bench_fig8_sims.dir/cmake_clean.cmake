file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_sims.dir/bench_fig8_sims.cpp.o"
  "CMakeFiles/bench_fig8_sims.dir/bench_fig8_sims.cpp.o.d"
  "bench_fig8_sims"
  "bench_fig8_sims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_sims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
