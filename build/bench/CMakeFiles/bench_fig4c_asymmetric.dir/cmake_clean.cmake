file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4c_asymmetric.dir/bench_fig4c_asymmetric.cpp.o"
  "CMakeFiles/bench_fig4c_asymmetric.dir/bench_fig4c_asymmetric.cpp.o.d"
  "bench_fig4c_asymmetric"
  "bench_fig4c_asymmetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4c_asymmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
