# Empty compiler generated dependencies file for bench_fig4c_asymmetric.
# This may be replaced when dependencies are built.
