# Empty dependencies file for bench_ablation_letflow.
# This may be replaced when dependencies are built.
