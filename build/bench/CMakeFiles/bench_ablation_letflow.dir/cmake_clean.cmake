file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_letflow.dir/bench_ablation_letflow.cpp.o"
  "CMakeFiles/bench_ablation_letflow.dir/bench_ablation_letflow.cpp.o.d"
  "bench_ablation_letflow"
  "bench_ablation_letflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_letflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
