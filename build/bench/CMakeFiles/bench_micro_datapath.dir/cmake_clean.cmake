file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_datapath.dir/bench_micro_datapath.cpp.o"
  "CMakeFiles/bench_micro_datapath.dir/bench_micro_datapath.cpp.o.d"
  "bench_micro_datapath"
  "bench_micro_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
