file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_workloads.dir/bench_ablation_workloads.cpp.o"
  "CMakeFiles/bench_ablation_workloads.dir/bench_ablation_workloads.cpp.o.d"
  "bench_ablation_workloads"
  "bench_ablation_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
