# Empty compiler generated dependencies file for bench_ablation_workloads.
# This may be replaced when dependencies are built.
