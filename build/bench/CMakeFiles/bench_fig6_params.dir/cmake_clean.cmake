file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_params.dir/bench_fig6_params.cpp.o"
  "CMakeFiles/bench_fig6_params.dir/bench_fig6_params.cpp.o.d"
  "bench_fig6_params"
  "bench_fig6_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
