file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_incast.dir/bench_fig7_incast.cpp.o"
  "CMakeFiles/bench_fig7_incast.dir/bench_fig7_incast.cpp.o.d"
  "bench_fig7_incast"
  "bench_fig7_incast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_incast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
