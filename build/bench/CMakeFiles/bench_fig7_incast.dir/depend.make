# Empty dependencies file for bench_fig7_incast.
# This may be replaced when dependencies are built.
